#include "fleet/machine_process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "net/socket.hpp"

namespace akadns::fleet {

MachineProcess::~MachineProcess() { kill_and_reap(); }

MachineProcess::MachineProcess(MachineProcess&& other) noexcept
    : spec_(std::move(other.spec_)),
      state_(other.state_),
      pid_(std::exchange(other.pid_, -1)),
      stdout_fd_(std::exchange(other.stdout_fd_, -1)),
      line_buf_(std::move(other.line_buf_)),
      captured_(std::move(other.captured_)),
      ready_(std::move(other.ready_)),
      exit_code_(other.exit_code_),
      term_signal_(other.term_signal_) {
  other.state_ = State::Idle;
}

MachineProcess& MachineProcess::operator=(MachineProcess&& other) noexcept {
  if (this != &other) {
    kill_and_reap();
    spec_ = std::move(other.spec_);
    state_ = other.state_;
    pid_ = std::exchange(other.pid_, -1);
    stdout_fd_ = std::exchange(other.stdout_fd_, -1);
    line_buf_ = std::move(other.line_buf_);
    captured_ = std::move(other.captured_);
    ready_ = std::move(other.ready_);
    exit_code_ = other.exit_code_;
    term_signal_ = other.term_signal_;
    other.state_ = State::Idle;
  }
  return *this;
}

Result<bool> MachineProcess::spawn() {
  if (state_ == State::Starting || state_ == State::Ready) {
    return Result<bool>::failure("machine " + spec_.id + " already running");
  }
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    return Result<bool>::failure(net::errno_message("pipe2"));
  }
  const pid_t child = ::fork();
  if (child < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Result<bool>::failure(net::errno_message("fork"));
  }
  if (child == 0) {
    // Child: stdout -> pipe, then exec. Only async-signal-safe calls.
    ::dup2(fds[1], STDOUT_FILENO);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(spec_.binary.c_str()));
    for (auto& arg : spec_.args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(spec_.binary.c_str(), argv.data());
    // exec failed: nothing sane to do but die with a distinctive code.
    _exit(127);
  }
  ::close(fds[1]);
  const int flags = ::fcntl(fds[0], F_GETFL, 0);
  ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK);
  pid_ = child;
  stdout_fd_ = fds[0];
  state_ = State::Starting;
  ready_.reset();
  line_buf_.clear();
  captured_.clear();
  exit_code_ = -1;
  term_signal_ = 0;
  return true;
}

void MachineProcess::drain_stdout() {
  if (stdout_fd_ < 0) return;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(stdout_fd_, buf, sizeof(buf));
    if (n > 0) {
      line_buf_.append(buf, static_cast<std::size_t>(n));
      std::size_t pos;
      while ((pos = line_buf_.find('\n')) != std::string::npos) {
        const std::string line = line_buf_.substr(0, pos + 1);
        line_buf_.erase(0, pos + 1);
        if (auto parsed = net::parse_ready_line(line)) {
          ready_ = std::move(parsed);
          if (state_ == State::Starting) state_ = State::Ready;
        } else {
          // Cap retained output; the tail (exit telemetry) is what matters.
          if (captured_.size() < 256 * 1024) captured_ += line;
        }
      }
      continue;
    }
    if (n == 0) {  // EOF: child closed stdout (usually: exited)
      ::close(stdout_fd_);
      stdout_fd_ = -1;
      return;
    }
    if (errno == EINTR) continue;
    return;  // EAGAIN (or a hard error — waitpid will notice the exit)
  }
}

void MachineProcess::reap_if_exited() {
  if (pid_ < 0 || state_ == State::Exited) return;
  int status = 0;
  const pid_t r = ::waitpid(pid_, &status, WNOHANG);
  if (r != pid_) return;
  // Final stdout sweep: the pipe may still hold the telemetry tail.
  drain_stdout();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  if (WIFEXITED(status)) {
    exit_code_ = WEXITSTATUS(status);
    term_signal_ = 0;
  } else if (WIFSIGNALED(status)) {
    exit_code_ = -1;
    term_signal_ = WTERMSIG(status);
  }
  state_ = State::Exited;
}

void MachineProcess::poll() {
  if (state_ == State::Idle || state_ == State::Exited) return;
  drain_stdout();
  reap_if_exited();
}

bool MachineProcess::wait_ready(int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 5) {
    poll();
    if (state_ == State::Ready) return true;
    if (state_ == State::Exited || state_ == State::Idle) return false;
    pollfd pfd{stdout_fd_, POLLIN, 0};
    ::poll(&pfd, stdout_fd_ >= 0 ? 1u : 0u, 5);
  }
  poll();
  return state_ == State::Ready;
}

bool MachineProcess::wait_exit(int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; waited += 5) {
    poll();
    if (state_ == State::Exited) return true;
    if (state_ == State::Idle) return false;
    pollfd pfd{stdout_fd_, POLLIN, 0};
    ::poll(&pfd, stdout_fd_ >= 0 ? 1u : 0u, 5);
  }
  poll();
  return state_ == State::Exited;
}

bool MachineProcess::send_signal(int sig) const {
  if (pid_ < 0 || state_ == State::Idle || state_ == State::Exited) return false;
  return ::kill(pid_, sig) == 0;
}

void MachineProcess::kill_and_reap() noexcept {
  if (pid_ >= 0 && state_ != State::Exited && state_ != State::Idle) {
    ::kill(pid_, SIGKILL);
    int status = 0;
    ::waitpid(pid_, &status, 0);
    state_ = State::Exited;
  }
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  pid_ = -1;
}

}  // namespace akadns::fleet
