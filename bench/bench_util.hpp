// Shared output helpers for the experiment benches: every bench prints
// the rows/series of the paper figure it regenerates, plus an ASCII
// rendition where a curve helps eyeballing shape fidelity.
//
// Machine-readable output: when AKADNS_BENCH_JSON=<path> is set in the
// environment (or enable_json_output() is called), every heading /
// subheading / print_row / print_count_row call is also recorded and
// flushed at exit as a JSON document — the same wiring the
// google-benchmark binaries get from --benchmark_out=<path>
// --benchmark_out_format=json, so CI can archive every bench's numbers
// without scraping stdout.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace akadns::bench {

namespace detail {

struct JsonRow {
  std::string section;
  std::string label;
  double value = 0.0;
  std::string unit;
  bool integral = false;  // emit as integer (count rows)
};

struct JsonState {
  bool enabled = false;
  std::string path;
  std::string title;    // first heading() becomes the bench title
  std::string section;  // current subheading
  std::vector<JsonRow> rows;

  void flush() const;
  // Flushing from the destructor (not atexit) keeps the write correctly
  // ordered with the destruction of this function-local static.
  ~JsonState() { flush(); }
};

inline std::string json_escape(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

inline JsonState& json_state() {
  static JsonState state = [] {
    JsonState s;
    if (const char* path = std::getenv("AKADNS_BENCH_JSON")) {
      s.enabled = true;
      s.path = path;
    }
    return s;
  }();
  return state;
}

inline void JsonState::flush() const {
  const JsonState& s = *this;
  if (!s.enabled || s.path.empty()) return;
  std::FILE* f = std::fopen(s.path.c_str(), "w");
  if (!f) return;
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [", json_escape(s.title).c_str());
  for (std::size_t i = 0; i < s.rows.size(); ++i) {
    const JsonRow& row = s.rows[i];
    std::fprintf(f, "%s\n    {\"section\": \"%s\", \"label\": \"%s\", ", i ? "," : "",
                 json_escape(row.section).c_str(), json_escape(row.label).c_str());
    if (row.integral) {
      std::fprintf(f, "\"value\": %lld", static_cast<long long>(row.value));
    } else {
      std::fprintf(f, "\"value\": %.6f", row.value);
    }
    if (!row.unit.empty()) std::fprintf(f, ", \"unit\": \"%s\"", json_escape(row.unit).c_str());
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
}

}  // namespace detail

/// Turns on JSON recording programmatically (the env var does the same).
inline void enable_json_output(const std::string& path) {
  detail::json_state().enabled = true;
  detail::json_state().path = path;
}

inline void heading(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
  auto& json = detail::json_state();
  if (json.title.empty()) json.title = title;
  json.section = title;
}

inline void subheading(const std::string& title) {
  std::printf("\n-- %s --\n", title.c_str());
  detail::json_state().section = title;
}

/// Prints a CDF as rows "x  F(x)  bar".
inline void print_cdf(const EmpiricalDistribution& dist, const std::vector<double>& xs,
                      const char* x_label, const char* x_unit) {
  std::printf("%14s  %8s\n", x_label, "CDF");
  for (const double x : xs) {
    const double f = dist.cdf_at(x);
    std::printf("%11.3f %s  %7.1f%%  |%s|\n", x, x_unit, 100.0 * f,
                render_bar(f, 40).c_str());
  }
}

inline void print_row(const char* label, double value, const char* unit = "") {
  std::printf("  %-44s %12.3f %s\n", label, value, unit);
  auto& json = detail::json_state();
  if (json.enabled) json.rows.push_back({json.section, label, value, unit, false});
}

inline void print_count_row(const char* label, std::uint64_t value) {
  std::printf("  %-44s %12s\n", label, fmt_count(value).c_str());
  auto& json = detail::json_state();
  if (json.enabled) {
    json.rows.push_back({json.section, label, static_cast<double>(value), "", true});
  }
}

}  // namespace akadns::bench
