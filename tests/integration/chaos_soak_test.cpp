// Chaos soak: sustained query load over a 4-PoP platform while failures
// roll through the fleet — disk failures, NIC failures, metadata
// partitions, crashes, recoveries. The §4.2 claim under test: "Akamai
// DNS is designed to always return an answer, even if there are
// widespread failures" — availability stays high throughout, every
// failure is detected and suspended, and every machine recovers.

#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "zone/zone_builder.hpp"

namespace akadns {
namespace {

using dns::DnsName;
using dns::Rcode;
using dns::RecordType;

struct Soak {
  core::Platform platform;
  std::vector<pop::Machine*> machines;
  netsim::NodeId client_node = netsim::kInvalidNode;
  std::uint64_t sent = 0;
  std::uint64_t answered = 0;

  Soak() : platform(make_config()) {
    platform.build_internet();
    for (int p = 0; p < 4; ++p) {
      auto& pop = platform.add_pop(platform.topology().edges[static_cast<std::size_t>(p)],
                                   2, {1});
      for (auto* machine : pop.machines()) machines.push_back(machine);
    }
    platform.host_zone(zone::ZoneBuilder("soak.com", 1)
                           .soa("ns1.soak.com", "hostmaster.soak.com", 1)
                           .ns("@", "ns1.soak.com")
                           .a("ns1", "10.0.0.1")
                           .a("www", "93.184.216.34")
                           .build());
    platform.start_mapping_heartbeat(Duration::seconds(5));
    platform.install_filter_pipeline();
    platform.run_until(platform.scheduler().now() + Duration::seconds(15));
    client_node = platform.topology().edges.back();
  }

  static core::PlatformConfig make_config() {
    core::PlatformConfig config;
    config.topology.tier1_count = 3;
    config.topology.tier2_count = 8;
    config.topology.edge_count = 12;
    config.network.slow_mrai_fraction = 0.0;
    config.seed = 404;
    config.query_timeout = Duration::millis(1'500);
    return config;
  }

  void schedule_queries(SimTime start, double seconds, double qps, Rng& rng) {
    std::uint16_t id = 1;
    for (double t = 0; t < seconds; t += 1.0 / qps) {
      const Endpoint source{
          IpAddr(Ipv4Addr(0x0A100000u + static_cast<std::uint32_t>(rng.next_below(200)))),
          static_cast<std::uint16_t>(1024 + rng.next_below(60000))};
      const auto query = dns::make_query(id++, DnsName::from("www.soak.com"), RecordType::A);
      ++sent;
      platform.scheduler().schedule_at(start + Duration::seconds_f(t),
                                       [this, source, query] {
        platform.send_query(client_node, source, 57, query, 1,
                            [this](std::optional<dns::Message> response, Duration) {
                              if (response && response->header.rcode == Rcode::NoError) {
                                ++answered;
                              }
                            });
      });
    }
  }

  void schedule_chaos(SimTime start, Rng& rng) {
    // Every 10 seconds, break a random machine a random way; every
    // failure heals 15 seconds later.
    const pop::FailureType kinds[] = {pop::FailureType::Disk, pop::FailureType::Memory,
                                      pop::FailureType::Nic,
                                      pop::FailureType::PartialConnectivity};
    for (int round = 0; round < 6; ++round) {
      const auto victim = rng.next_below(machines.size());
      const auto kind = kinds[rng.next_below(4)];
      const SimTime at = start + Duration::seconds(5 + 10 * round);
      platform.scheduler().schedule_at(at, [this, victim, kind] {
        machines[victim]->inject_failure(kind);
      });
      platform.scheduler().schedule_at(at + Duration::seconds(15), [this, victim] {
        machines[victim]->clear_failure();
      });
    }
  }
};

TEST(ChaosSoak, AvailabilitySurvivesRollingFailures) {
  Soak soak;
  Rng rng(777);
  const SimTime start = soak.platform.scheduler().now();
  soak.schedule_queries(start, /*seconds=*/70, /*qps=*/20, rng);
  soak.schedule_chaos(start, rng);
  soak.platform.run_until(start + Duration::seconds(80));

  const double availability =
      static_cast<double>(soak.answered) / static_cast<double>(soak.sent);
  // Failures cost at most brief blips around suspension/re-advertisement;
  // anycast always finds a healthy PoP.
  EXPECT_GT(availability, 0.97) << soak.answered << "/" << soak.sent;

  // Every machine ended healthy and re-advertising.
  std::size_t advertising = 0;
  for (auto* machine : soak.machines) {
    EXPECT_NE(machine->nameserver().state(), server::ServerState::Crashed)
        << machine->id();
    if (machine->speaker().advertising(1)) ++advertising;
  }
  EXPECT_EQ(advertising, soak.machines.size());
  // The suspension quota was never violated.
  EXPECT_LE(soak.platform.coordinator().suspended_count(),
            soak.platform.coordinator().quota());
}

TEST(ChaosSoak, DeterministicAcrossRuns) {
  auto run_once = [] {
    Soak soak;
    Rng rng(777);
    const SimTime start = soak.platform.scheduler().now();
    soak.schedule_queries(start, 20, 20, rng);
    soak.schedule_chaos(start, rng);
    soak.platform.run_until(start + Duration::seconds(30));
    return std::pair(soak.sent, soak.answered);
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);  // bit-for-bit reproducible simulation
}

}  // namespace
}  // namespace akadns
