#include "zone/compiled_zone.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>

namespace akadns::zone {

using dns::CnameRecord;
using dns::NsRecord;
using dns::WireFragment;

namespace {

// DnsName caps wire length at 255 octets, so a name can never exceed 127
// labels; the lookup's per-depth hash table lives on the stack.
constexpr std::size_t kMaxDepth = 127;

std::span<const WireFragment> subspan(const std::vector<WireFragment>& v,
                                      std::uint32_t begin, std::uint32_t end) noexcept {
  return std::span<const WireFragment>(v.data() + begin, end - begin);
}

}  // namespace

CompiledZonePtr CompiledZone::compile(ZonePtr source) {
  const auto t0 = std::chrono::steady_clock::now();
  auto out = std::make_shared<CompiledZone>();
  const Zone& z = *source;
  out->source_ = std::move(source);
  const DnsName& apex = z.apex();
  const std::size_t apex_depth = apex.label_count();

  // 1. Every existing name, with empty non-terminals materialized: each
  //    zone name plus all its ancestors down to the apex. With ENTs
  //    explicit, "some descendant exists" becomes "this name is in the
  //    table", which is what lets lookup() be a pure top-down walk.
  std::set<DnsName> name_set;
  name_set.insert(apex);
  for (const DnsName& name : z.all_names()) {
    DnsName cur = name;
    while (cur.label_count() > apex_depth) {
      if (!name_set.insert(cur).second) break;  // ancestors already present
      cur = cur.parent();
    }
  }

  out->names_.assign(name_set.begin(), name_set.end());
  std::map<DnsName, std::uint32_t> index_of;
  for (std::uint32_t i = 0; i < out->names_.size(); ++i) index_of.emplace(out->names_[i], i);

  // 2. Per-node record compilation: fragments in RecordType map order
  //    (the interpreted iteration order), type ranges, CNAME target, and
  //    the referral group for delegation cuts.
  out->nodes_.reserve(out->names_.size());
  for (std::uint32_t i = 0; i < out->names_.size(); ++i) {
    const DnsName& name = out->names_[i];
    Node node;
    node.name_index = i;
    node.depth = static_cast<std::uint16_t>(name.label_count());
    node.ranges_begin = static_cast<std::uint32_t>(out->type_ranges_.size());
    node.frag_begin = static_cast<std::uint32_t>(out->fragments_.size());
    if (const auto* rrsets = z.rrsets_at(name)) {
      for (const auto& [type, set] : *rrsets) {
        TypeRange range;
        range.type = type;
        range.begin = static_cast<std::uint32_t>(out->fragments_.size());
        range.ttl = set.ttl();
        for (const auto& rr : set.records) out->fragments_.push_back(dns::make_wire_fragment(rr));
        range.end = static_cast<std::uint32_t>(out->fragments_.size());
        out->type_ranges_.push_back(range);
        if (type == RecordType::CNAME && !set.records.empty()) {
          node.cname_target = &std::get<CnameRecord>(set.records.front().rdata).target;
        }
      }
    }
    node.ranges_end = static_cast<std::uint32_t>(out->type_ranges_.size());
    node.frag_end = static_cast<std::uint32_t>(out->fragments_.size());

    // A non-apex NS RRset is a zone cut: precompile the whole referral
    // (NS authority, then glue in attach_glue() order — A then AAAA per
    // NS record, duplicates preserved).
    const RrSet* ns = (name == apex) ? nullptr : z.find(name, RecordType::NS);
    if (ns != nullptr && !ns->records.empty()) {
      ReferralGroup group;
      group.auth_begin = static_cast<std::uint32_t>(out->referral_fragments_.size());
      std::uint32_t min_ttl = ns->ttl();
      for (const auto& rr : ns->records) {
        out->referral_fragments_.push_back(dns::make_wire_fragment(rr));
      }
      group.auth_end = static_cast<std::uint32_t>(out->referral_fragments_.size());
      for (const auto& rr : ns->records) {
        const auto& target = std::get<NsRecord>(rr.rdata).nameserver;
        if (!target.is_subdomain_of(apex)) continue;
        for (const RecordType t : {RecordType::A, RecordType::AAAA}) {
          if (const RrSet* glue = z.find(target, t)) {
            min_ttl = std::min(min_ttl, glue->ttl());
            for (const auto& grr : glue->records) {
              out->referral_fragments_.push_back(dns::make_wire_fragment(grr));
            }
          }
        }
      }
      group.add_end = static_cast<std::uint32_t>(out->referral_fragments_.size());
      group.min_ttl = min_ttl;
      node.referral = static_cast<std::int32_t>(out->referral_groups_.size());
      out->referral_groups_.push_back(group);
    }
    out->nodes_.push_back(node);
  }

  // 3. Wildcard links: "*.parent" hangs off its parent node so the
  //    closest-encloser check is one indexed load.
  for (std::uint32_t i = 0; i < out->names_.size(); ++i) {
    const DnsName& name = out->names_[i];
    if (name.label_count() > apex_depth && name.label(0) == "*") {
      out->nodes_[index_of.at(name.parent())].wildcard = static_cast<std::int32_t>(i);
    }
  }

  // 4. Negative-answer authority: the apex SOA with its TTL clamped to
  //    negative_ttl() (RFC 2308), shared by every NXDOMAIN/NODATA.
  if (const RrSet* soa = z.find(apex, RecordType::SOA); soa != nullptr && !soa->records.empty()) {
    out->negative_ttl_ = z.negative_ttl();
    WireFragment fragment = dns::make_wire_fragment(soa->records.front());
    fragment.set_ttl(out->negative_ttl_);
    out->negative_soa_.push_back(std::move(fragment));
  }

  // 5. Hash index over all existing names, sorted for binary search.
  out->index_.reserve(out->names_.size());
  for (std::uint32_t i = 0; i < out->names_.size(); ++i) {
    out->index_.emplace_back(out->names_[i].suffix_hash(), i);
  }
  std::sort(out->index_.begin(), out->index_.end());
  out->apex_node_ = index_of.at(apex);

  out->compile_micros_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() - t0)
          .count());
  return out;
}

const CompiledZone::Node* CompiledZone::find_node(std::uint64_t hash, const DnsName& qname,
                                                  std::size_t depth) const noexcept {
  auto it = std::lower_bound(
      index_.begin(), index_.end(), hash,
      [](const std::pair<std::uint64_t, std::uint32_t>& entry, std::uint64_t h) {
        return entry.first < h;
      });
  for (; it != index_.end() && it->first == hash; ++it) {
    const Node& node = nodes_[it->second];
    if (node.depth == depth && names_[node.name_index].equals_tail_of(qname, depth)) {
      return &node;
    }
  }
  return nullptr;
}

const CompiledZone::TypeRange* CompiledZone::find_range(const Node& node,
                                                        dns::RecordType type) const noexcept {
  for (std::uint32_t i = node.ranges_begin; i < node.ranges_end; ++i) {
    if (type_ranges_[i].type == type) return &type_ranges_[i];
  }
  return nullptr;
}

CompiledAnswer CompiledZone::negative(LookupStatus status) const noexcept {
  CompiledAnswer out;
  out.status = status;
  out.authority = std::span<const WireFragment>(negative_soa_);
  out.min_ttl = negative_ttl_;
  return out;
}

CompiledAnswer CompiledZone::lookup(const DnsName& qname, dns::RecordType qtype) const noexcept {
  CompiledAnswer out;
  if (!qname.is_subdomain_of(apex())) return out;  // out of bailiwick; caller guards
  const std::size_t qn = qname.label_count();
  const std::size_t an = apex().label_count();
  if (qn > kMaxDepth) return negative(LookupStatus::NxDomain);  // unreachable by DnsName limits

  // One right-to-left pass computes the suffix hash at every depth.
  std::uint64_t hashes[kMaxDepth + 1];
  std::uint64_t h = DnsName::kSuffixHashSeed;
  for (std::size_t depth = 1; depth <= qn; ++depth) {
    h = DnsName::suffix_hash_extend(h, qname.label(qn - depth));
    hashes[depth] = h;
  }

  // Top-down walk from the apex. Because ENTs are materialized, the first
  // missing depth proves the qname does not exist and the previous node
  // is the closest encloser; a delegation cut is caught the moment the
  // walk steps onto it (shallowest cut wins, as in the interpreted
  // delegation-first ordering).
  const Node* node = &nodes_[apex_node_];
  for (std::size_t depth = an + 1; depth <= qn; ++depth) {
    const Node* next = find_node(hashes[depth], qname, depth);
    if (next == nullptr) {
      if (node->wildcard >= 0) {  // wildcard at the closest encloser (RFC 4592)
        const Node& wild = nodes_[static_cast<std::uint32_t>(node->wildcard)];
        out.wildcard_match = true;
        if (const TypeRange* range = find_range(wild, qtype)) {
          out.status = LookupStatus::Answer;
          out.answers = subspan(fragments_, range->begin, range->end);
          out.min_ttl = range->ttl;
          return out;
        }
        if (const TypeRange* range = find_range(wild, RecordType::CNAME)) {
          out.status = LookupStatus::CnameChase;
          out.answers = subspan(fragments_, range->begin, range->end);
          out.cname_target = wild.cname_target;
          out.min_ttl = range->ttl;
          return out;
        }
        CompiledAnswer neg = negative(LookupStatus::NoData);
        neg.wildcard_match = true;
        return neg;
      }
      return negative(LookupStatus::NxDomain);
    }
    if (next->referral >= 0) {
      const ReferralGroup& group = referral_groups_[static_cast<std::uint32_t>(next->referral)];
      out.status = LookupStatus::Referral;
      out.authority = subspan(referral_fragments_, group.auth_begin, group.auth_end);
      out.additional = subspan(referral_fragments_, group.auth_end, group.add_end);
      out.min_ttl = group.min_ttl;
      return out;
    }
    node = next;
  }

  // Exact match (possibly an ENT, whose empty ranges fall through to
  // NODATA — including for ANY, matching the interpreted path where an
  // ENT is not a node at all).
  if (const TypeRange* range = find_range(*node, qtype)) {
    out.status = LookupStatus::Answer;
    out.answers = subspan(fragments_, range->begin, range->end);
    out.min_ttl = range->ttl;
    return out;
  }
  if (qtype == RecordType::ANY && node->frag_end > node->frag_begin) {
    out.status = LookupStatus::Answer;
    out.answers = subspan(fragments_, node->frag_begin, node->frag_end);
    std::uint32_t min_ttl = UINT32_MAX;
    for (std::uint32_t i = node->ranges_begin; i < node->ranges_end; ++i) {
      min_ttl = std::min(min_ttl, type_ranges_[i].ttl);
    }
    out.min_ttl = min_ttl;
    return out;
  }
  if (const TypeRange* range = find_range(*node, RecordType::CNAME)) {
    out.status = LookupStatus::CnameChase;
    out.answers = subspan(fragments_, range->begin, range->end);
    out.cname_target = node->cname_target;
    out.min_ttl = range->ttl;
    return out;
  }
  return negative(LookupStatus::NoData);
}

}  // namespace akadns::zone
