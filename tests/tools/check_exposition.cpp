// Tiny exposition-format checker for CI.
//
// Reads a Prometheus text-exposition scrape (a file, or stdin for "-"),
// parses it with the same obs::Exposition parser the loadgen and the
// endpoint tests use, and optionally asserts that named families are
// present with a non-zero sum. Exit 0 on success, 1 with a diagnostic
// on any parse error or failed assertion — so a formatting regression
// or a dead counter fails the CI job instead of shipping a blank scrape
// artifact.
//
//   check_exposition scrape.txt --nonzero akadns_frontend_total
//       [--nonzero FAMILY]...

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/exposition.hpp"

namespace {

std::string read_input(const std::string& path) {
  std::ostringstream out;
  if (path == "-") {
    out << std::cin.rdbuf();
  } else {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    out << in.rdbuf();
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s FILE|- [--nonzero FAMILY]...\n"
                 "  parses a Prometheus text exposition; with --nonzero,\n"
                 "  additionally requires sum(FAMILY) > 0\n",
                 argv[0]);
    return 1;
  }
  const std::string path = argv[1];
  std::vector<std::string> nonzero;
  for (int i = 2; i < argc; ++i) {
    if (std::string(argv[i]) == "--nonzero" && i + 1 < argc) {
      nonzero.emplace_back(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 1;
    }
  }

  akadns::obs::Exposition parsed;
  try {
    parsed = akadns::obs::Exposition::parse(read_input(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "check_exposition: %s: %s\n", path.c_str(), e.what());
    return 1;
  }

  bool ok = true;
  for (const auto& family : nonzero) {
    if (!parsed.has(family)) {
      std::fprintf(stderr, "check_exposition: family %s absent from scrape\n",
                   family.c_str());
      ok = false;
      continue;
    }
    const double sum = parsed.sum(family);
    if (sum <= 0.0) {
      std::fprintf(stderr, "check_exposition: sum(%s) = %g, expected > 0\n",
                   family.c_str(), sum);
      ok = false;
    } else {
      std::printf("%-40s sum=%g\n", family.c_str(), sum);
    }
  }
  std::printf("parsed %zu samples across %zu typed families\n",
              parsed.samples().size(), parsed.typed_families().size());
  return ok ? 0 : 1;
}
