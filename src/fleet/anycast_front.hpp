// The anycast front: one address, many machines (§4.2).
//
// In production a PoP announces one anycast prefix and the routers'
// ECMP flow hash pins each resolver to one machine; when a machine
// withdraws (BGP) the hash recomputes and only its flows move. This is
// the loopback realization of that dataplane: a UDP/TCP proxy bound to
// a single front endpoint that pins each client flow to a machine via
// rendezvous (highest-random-weight) hashing over the *active* member
// set — so member churn moves only the flows whose winner changed,
// exactly ECMP-with-resilient-hashing semantics.
//
// Suspension (the probe suite's verdict) and death (supervisor Down)
// both become set_member_active(false)/upsert_member: affected flows
// re-pin immediately and a ReconvergeSample records how many moved and
// how long until the first answer flowed on a re-pinned flow — the
// time-to-reconverge a failover drill reads out.
//
// One epoll thread owns every socket; control ops (member churn) are
// queued and executed on that thread, so the flow table needs no locks.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ip.hpp"
#include "common/result.hpp"
#include "net/socket.hpp"

namespace akadns::fleet {

struct FrontConfig {
  Ipv4Addr bind_addr = Ipv4Addr(127, 0, 0, 1);
  /// Front UDP+TCP port (0 = ephemeral; read back via udp_port()).
  std::uint16_t port = 0;
  /// Flow-table bound; beyond it the oldest-idle flows are evicted.
  std::size_t max_flows = 8192;
  /// Idle flows older than this are swept (ms).
  std::int64_t flow_idle_ms = 30'000;
  /// A flow that forwarded a client query upstream and saw no answer
  /// within this budget reports an upstream timeout (counter + the
  /// on_upstream_timeout callback, once per stall). 0 disables. This is
  /// an *advisory* signal: it feeds the probe suite's anomaly counters
  /// and may prompt an immediate probe round, but only end-to-end
  /// probes can suspend a machine.
  std::int64_t upstream_timeout_ms = 0;
};

/// One catchment change, measured end to end.
struct ReconvergeSample {
  std::string member;             // who withdrew / returned / moved
  bool withdrawal = true;         // false: member (re)activated
  std::uint64_t flows_moved = 0;  // flows whose winner changed
  std::int64_t remap_us = 0;      // trigger -> flow table fully re-pinned
  /// trigger -> first upstream answer relayed on a re-pinned flow; -1
  /// until traffic proves the new catchment works. A flow moved again
  /// before answering keeps measuring against its OLDEST unanswered
  /// re-pin: the client-visible recovery clock starts at the first
  /// disruption, not the latest remap.
  std::int64_t first_answer_us = -1;
  /// Steady-clock trigger instant (internal anchor for first_answer_us).
  std::int64_t trigger_ns = 0;
};

/// Live counters (single-writer on the epoll thread, torn reads fine).
struct FrontCounters {
  std::atomic<std::uint64_t> udp_client_datagrams{0};
  std::atomic<std::uint64_t> udp_upstream_answers{0};
  std::atomic<std::uint64_t> udp_no_member_drops{0};
  std::atomic<std::uint64_t> udp_upstream_errors{0};
  std::atomic<std::uint64_t> udp_upstream_timeouts{0};
  std::atomic<std::uint64_t> flows_created{0};
  std::atomic<std::uint64_t> flows_moved{0};
  std::atomic<std::uint64_t> flows_expired{0};
  std::atomic<std::uint64_t> tcp_connections{0};
  std::atomic<std::uint64_t> tcp_relay_errors{0};
};

struct FrontCountersView {
  std::uint64_t udp_client_datagrams = 0;
  std::uint64_t udp_upstream_answers = 0;
  std::uint64_t udp_no_member_drops = 0;
  std::uint64_t udp_upstream_errors = 0;
  std::uint64_t udp_upstream_timeouts = 0;
  std::uint64_t flows_created = 0;
  std::uint64_t flows_moved = 0;
  std::uint64_t flows_expired = 0;
  std::uint64_t tcp_connections = 0;
  std::uint64_t tcp_relay_errors = 0;
  std::uint64_t live_flows = 0;
};

struct FrontMemberView {
  std::string id;
  Endpoint endpoint;
  bool active = false;
};

class AnycastFront {
 public:
  explicit AnycastFront(FrontConfig config);
  ~AnycastFront();

  AnycastFront(const AnycastFront&) = delete;
  AnycastFront& operator=(const AnycastFront&) = delete;

  Result<bool> start();
  void stop();

  /// Installs the upstream-timeout observer (see
  /// FrontConfig::upstream_timeout_ms). Must be called before start();
  /// the callback runs on the epoll thread and must be fast and
  /// thread-safe. It names the member whose flow stalled.
  using UpstreamTimeoutFn = std::function<void(const std::string& member_id)>;
  void set_on_upstream_timeout(UpstreamTimeoutFn fn) {
    on_upstream_timeout_ = std::move(fn);
  }

  std::uint16_t udp_port() const noexcept { return udp_port_; }
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// Adds a member, or re-points an existing one (machine restarted on
  /// fresh ephemeral ports). Re-pointing re-pins that member's flows.
  void upsert_member(const std::string& id, Endpoint endpoint);
  /// Withdraw (false) or restore (true) a member from steering. New and
  /// re-pinned flows avoid inactive members; an inactive member's
  /// existing flows are moved off it immediately.
  void set_member_active(const std::string& id, bool active);
  void remove_member(const std::string& id);

  std::vector<FrontMemberView> members() const;
  std::vector<ReconvergeSample> samples() const;
  FrontCountersView counters() const;

 private:
  struct UdpFlow;
  struct TcpConn;
  struct PollRef;

  void loop();
  void process_ops();
  void handle_front_udp();
  void handle_flow(UdpFlow* flow);
  void handle_accept();
  void handle_tcp(TcpConn* conn, std::uint32_t events);
  void close_tcp(TcpConn* conn);
  void sweep_idle(std::int64_t now_ns);
  void check_upstream_timeouts(std::int64_t now_ns);
  /// Rendezvous winner among active members, or npos.
  std::size_t pick_member(const Endpoint& client) const;
  void repin_member_flows(const std::string& id, bool withdrawal);
  bool attach_flow_upstream(UdpFlow& flow, std::size_t member_index);
  std::int64_t now_ns() const;

  FrontConfig config_;

  struct Member {
    std::string id;
    Endpoint endpoint;
    bool active = true;
    std::uint64_t salt = 0;  // hash(id), precomputed
  };
  std::vector<Member> members_;  // epoll-thread owned

  net::UdpSocket front_udp_;
  net::TcpListener front_tcp_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::uint16_t udp_port_ = 0;
  std::uint16_t tcp_port_ = 0;

  std::unordered_map<Endpoint, std::unique_ptr<UdpFlow>> flows_;
  /// Flows evicted mid-epoll-batch, kept alive (dead=true) until the
  /// batch ends so stale events can't dereference freed memory.
  std::vector<std::unique_ptr<UdpFlow>> dying_flows_;
  std::vector<std::unique_ptr<TcpConn>> tcp_conns_;

  mutable std::mutex control_mu_;
  std::deque<std::function<void()>> ops_;
  std::vector<ReconvergeSample> samples_;
  std::vector<FrontMemberView> member_view_;

  FrontCounters counters_;
  UpstreamTimeoutFn on_upstream_timeout_;
  std::atomic<std::uint64_t> live_flows_{0};
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
};

}  // namespace akadns::fleet
