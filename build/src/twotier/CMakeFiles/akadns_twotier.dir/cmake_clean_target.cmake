file(REMOVE_RECURSE
  "libakadns_twotier.a"
)
