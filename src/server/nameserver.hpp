// The authoritative nameserver instance — the paper's "specialized
// nameserver software" running on each machine in a PoP (§3.1, Figure 6).
//
// Datapath per packet (one QueryContext, created at receive() and moved
// through every stage — no copies, no re-parsing):
//   receive(): one-pass QueryView decode (header + question) -> firewall
//   check (QoD rules) -> I/O capacity check (drops below the application
//   when the NIC/stack is saturated, the A > A2 region of Figure 10) ->
//   filter scoring over the decoded question -> penalty queue placement
//   with the packet bytes in a pooled buffer.
//   process(): work-conserving drain of the penalty queues at the
//   compute capacity, EDNS walk completed in place, authoritative
//   resolution, response out through the sink, response outcome fanned
//   back to the filters.
// Every drop is accounted against the unified DropReason taxonomy so
//   packets_received == responses_sent + drops.total() + pending
// holds exactly; each stage records its latency into DatapathTelemetry.
//
// Failure model:
//   - a crash predicate marks queries-of-death (§4.2.4); processing one
//     crashes the instance, optionally installing a firewall rule;
//   - self-suspension (§4.2.1/4.2.2) stops serving until resumed —
//     driven externally by the monitoring agent in src/pop;
//   - metadata staleness tracking (§4.2.2) with a configurable threshold.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>

#include "common/buffer_pool.hpp"
#include "common/drop_reason.hpp"
#include "common/token_bucket.hpp"
#include "filters/filter.hpp"
#include "filters/penalty_queues.hpp"
#include "server/firewall.hpp"
#include "server/query_context.hpp"
#include "server/responder.hpp"
#include "server/telemetry.hpp"

namespace akadns::server {

enum class ServerState : std::uint8_t {
  Running,
  Crashed,        // hit a query-of-death; needs restart()
  SelfSuspended,  // health check failed / stale metadata; needs resume()
};

std::string to_string(ServerState s);

struct NameserverConfig {
  std::string id = "ns";
  /// Queries the application can answer per second (compute bound; the
  /// paper: "compute tends to be the bottleneck for any attack that
  /// arrives at the application").
  double compute_capacity_qps = 50'000.0;
  /// Packets the stack can hand to the application per second (I/O
  /// bound; past this, drops happen below the application — region
  /// A > A2 in Figure 10).
  double io_capacity_qps = 300'000.0;
  filters::PenaltyQueueConfig queue_config{};
  /// T_QoD: lifetime of an installed query-of-death firewall rule.
  Duration qod_rule_ttl = Duration::minutes(10);
  /// The QoD trap is "only deployed on a subset of nameservers".
  bool qod_trap_enabled = true;
  /// Metadata older than this is considered stale (§4.2.2).
  Duration staleness_threshold = Duration::seconds(30);
  /// Input-delayed nameservers (§4.2.3) never self-suspend on staleness.
  bool input_delayed = false;
};

struct NameserverStats {
  std::uint64_t packets_received = 0;
  std::uint64_t queries_enqueued = 0;
  std::uint64_t queries_processed = 0;
  std::uint64_t responses_sent = 0;
  std::uint64_t crashes = 0;
  /// Every dropped packet, bucketed by the stage that killed it.
  DropCounters drops;

  // Named views over the taxonomy (the seed kept these as disjoint
  // fields; they are now projections of the same counters).
  std::uint64_t dropped_firewall() const noexcept { return drops[DropReason::Firewall]; }
  std::uint64_t dropped_io() const noexcept { return drops[DropReason::IoOverload]; }
  std::uint64_t dropped_not_running() const noexcept { return drops[DropReason::NotRunning]; }
  std::uint64_t discarded_by_score() const noexcept { return drops[DropReason::ScoreDiscard]; }
  std::uint64_t dropped_queue_full() const noexcept { return drops[DropReason::QueueFull]; }
  std::uint64_t malformed() const noexcept { return drops[DropReason::Malformed]; }
};

class Nameserver {
 public:
  using ResponseSink = std::function<void(const Endpoint& dst, std::vector<std::uint8_t> wire)>;
  /// Zero-copy sink: the span aliases the nameserver's reusable response
  /// buffer and is only valid for the duration of the call. When set it
  /// takes precedence over the owning ResponseSink.
  using ResponseSpanSink =
      std::function<void(const Endpoint& dst, std::span<const std::uint8_t> wire)>;
  using CrashPredicate = std::function<bool(const dns::Question&)>;

  Nameserver(NameserverConfig config, const zone::ZoneStore& store);

  const std::string& id() const noexcept { return config_.id; }
  const NameserverConfig& config() const noexcept { return config_; }

  // ---- datapath ----------------------------------------------------------

  /// Accepts one packet from the wire. Drops (with accounting) when a
  /// firewall rule matches, the I/O capacity is exceeded, the instance is
  /// not Running, the wire fails to decode, or the penalty queues discard
  /// it. A surviving packet becomes a QueryContext in a penalty queue.
  void receive(std::span<const std::uint8_t> wire, const Endpoint& source,
               std::uint8_t ip_ttl, SimTime now);

  /// Processes queued queries subject to the compute token bucket.
  /// Returns the number processed. A query-of-death stops processing
  /// immediately (the instance crashes).
  std::size_t process(SimTime now);

  /// Processes at most `budget` queries regardless of the bucket (used by
  /// tests and by drivers that meter compute themselves).
  std::size_t process_unmetered(SimTime now, std::size_t budget);

  bool has_pending() const noexcept { return !queues_.empty(); }
  std::size_t pending() const noexcept { return queues_.size(); }

  void set_response_sink(ResponseSink sink) { sink_ = std::move(sink); }
  void set_response_span_sink(ResponseSpanSink sink) { span_sink_ = std::move(sink); }
  void set_crash_predicate(CrashPredicate predicate) { crash_predicate_ = std::move(predicate); }
  void set_mapping_hook(MappingHook hook) { responder_.set_mapping_hook(std::move(hook)); }

  // ---- lifecycle / health -------------------------------------------------

  ServerState state() const noexcept { return state_; }
  bool running() const noexcept { return state_ == ServerState::Running; }

  /// Monitoring-agent actions.
  void self_suspend() noexcept;
  void resume() noexcept;
  /// Restart after a crash (flushes queued queries — accounted as
  /// RestartFlush drops; resolvers retry).
  void restart(SimTime now);

  /// The payload that crashed the server, if any (written "to disk" for
  /// the firewall-builder process and operations).
  const std::optional<dns::Question>& last_qod() const noexcept { return last_qod_; }

  // ---- metadata freshness --------------------------------------------------

  /// Marks a metadata delivery (zone publish / mapping update).
  void metadata_updated(SimTime now) noexcept { last_metadata_ = now; }
  SimTime last_metadata_update() const noexcept { return last_metadata_; }
  /// Stale iff the newest input is older than the threshold. Input-delayed
  /// nameservers always report fresh (they intentionally serve stale data).
  bool is_stale(SimTime now) const noexcept;

  // ---- components ----------------------------------------------------------

  filters::ScoringEngine& scoring() noexcept { return scoring_; }
  Responder& responder() noexcept { return responder_; }
  const Responder& responder() const noexcept { return responder_; }
  Firewall& firewall() noexcept { return firewall_; }
  const NameserverStats& stats() const noexcept { return stats_; }
  const filters::PenaltyQueueSet<QueryContext>& queues() const noexcept { return queues_; }
  const BufferPool& pool() const noexcept { return *pool_; }
  const DatapathTelemetry& telemetry() const noexcept { return telemetry_; }

 private:
  /// Dequeues and handles a single query; false when queues are empty.
  bool process_one(SimTime now);

  NameserverConfig config_;
  Responder responder_;
  filters::ScoringEngine scoring_;
  Firewall firewall_;
  // The pool must outlive the queues (queued PooledBuffers release into
  // it on destruction) — declared first so it destructs last. It lives
  // behind a unique_ptr because Nameserver is movable and the buffers
  // hold a stable pointer to the pool.
  std::unique_ptr<BufferPool> pool_;
  filters::PenaltyQueueSet<QueryContext> queues_;
  TokenBucket compute_bucket_;
  TokenBucket io_bucket_;
  ResponseSink sink_;
  ResponseSpanSink span_sink_;
  /// Reused across queries; the responder encodes into it in place, so
  /// steady-state processing performs no per-query heap allocation.
  std::vector<std::uint8_t> response_scratch_;
  CrashPredicate crash_predicate_;
  ServerState state_ = ServerState::Running;
  std::optional<dns::Question> last_qod_;
  SimTime last_metadata_ = SimTime::origin();
  NameserverStats stats_;
  DatapathTelemetry telemetry_;
};

}  // namespace akadns::server
