// The query-scoring defense pipeline (§4.3.3/§4.3.4), extracted from the
// nameserver into a transport-agnostic engine.
//
// A DefenseEngine owns everything between "a decoded query arrived" and
// "a query is handed to the responder": the query-of-death firewall, the
// I/O admission gate, per-lane filter chains (ScoringEngine), per-lane
// penalty-queue sets, the compute token-budget metering that turns the
// queues into a work-conserving priority scheduler, and drop accounting
// for every stage. It is parameterized on:
//
//   - Item: whatever the transport queues per admitted query (the sim and
//     the socket workers both use server::QueryContext);
//   - Clock (common/clock.hpp): the sim injects a ManualClock driven by
//     the EventScheduler — results are bit-identical to the pre-extraction
//     nameserver — while net::Server workers run the same engine on
//     CLOCK_MONOTONIC.
//
// Threading contract (identical to the sharded nameserver's):
//   - receive-side calls (firewall_drops / io_admit / score / enqueue)
//     and the phase boundaries (begin_phase / end_phase / flush_lane) are
//     serial;
//   - next() + observe_response() are parallel-safe for DISTINCT lanes:
//     they touch only that lane's queues/filters/counters.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/clock.hpp"
#include "common/drop_reason.hpp"
#include "common/ip.hpp"
#include "common/token_bucket.hpp"
#include "defense/firewall.hpp"
#include "filters/filter.hpp"
#include "filters/penalty_queues.hpp"
#include "obs/registry.hpp"

namespace akadns::defense {

struct DefenseConfig {
  /// Independent defense lanes (one filter chain + queue set each). The
  /// sim nameserver runs one engine with N lanes; a socket worker runs a
  /// single-lane engine per worker (the kernel's RSS hash is its lane
  /// selector).
  std::size_t lanes = 1;
  /// Compute metering: queries begin_phase() may release per second.
  /// <= 0 disables metering — begin_phase() then budgets the whole
  /// backlog (pure work-conserving drain, no shaping).
  double compute_capacity_qps = 0.0;
  double compute_burst_fraction = 0.1;
  /// I/O admission gate (Figure 10, A > A2): packets io_admit() accepts
  /// per second. <= 0 disables the gate (real sockets let the kernel
  /// drop; the sim models the NIC with it).
  double io_capacity_qps = 0.0;
  double io_burst_fraction = 0.05;
  filters::PenaltyQueueConfig queue_config{};
};

/// Per-lane defense accounting. Engine-owned telemetry: the transports
/// keep their own packet-level stats, this is the defense view (what the
/// pipeline admitted, shed, and why). There is no struct-level merge any
/// more — aggregation across lanes/workers/machines happens at scrape
/// time through the metrics registry (register_metrics / snapshot).
struct DefenseLaneStats {
  obs::Counter scored;    // queries run through the filter chain
  obs::Counter enqueued;  // admitted into a penalty queue
  obs::Counter released;  // dequeued for processing (budget granted)
  DropCounters drops;     // Firewall / IoOverload / ScoreDiscard / QueueFull / RestartFlush

  void register_into(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    reg.counter("akadns_defense_scored_total", base, scored,
                "queries run through the filter chain");
    reg.counter("akadns_defense_enqueued_total", base, enqueued,
                "queries admitted into a penalty queue");
    reg.counter("akadns_defense_released_total", base, released,
                "queries dequeued for processing");
    // The engine's shed accounting mirrors drops the transport also
    // counts in the canonical taxonomy; its own family keeps
    // akadns_drops_total sums single-counted.
    obs::register_drop_counters(reg, drops, base, "akadns_defense_drops_total");
  }

  bool operator==(const DefenseLaneStats&) const noexcept = default;
};

template <typename Item>
class DefenseEngine {
 public:
  DefenseEngine(DefenseConfig config, const Clock& clock)
      : config_(config), clock_(&clock) {
    if (config_.lanes == 0) config_.lanes = 1;
    lanes_.reserve(config_.lanes);
    for (std::size_t i = 0; i < config_.lanes; ++i) lanes_.emplace_back(config_.queue_config);
    reset_buckets();
  }

  std::size_t lane_count() const noexcept { return lanes_.size(); }
  const Clock& clock() const noexcept { return *clock_; }
  const DefenseConfig& config() const noexcept { return config_; }

  /// Lane a source endpoint is pinned to. RSS-style flow pinning: every
  /// packet of a (addr, port) flow lands in the same lane, so per-source
  /// filter state (rate limits, loyalty) is lane-local without sharing.
  /// Deliberately different mix constants from Pop::ecmp_select — reusing
  /// that hash would correlate the machine pick with the lane pick and
  /// skew every machine's traffic onto few lanes.
  std::size_t lane_of(const Endpoint& source) const noexcept {
    if (lanes_.size() == 1) return 0;
    std::uint64_t h = source.addr.hash();
    h ^= h >> 31;
    h *= 0x9e3779b97f4a7c15ULL;
    h += source.port;
    h ^= h >> 27;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % lanes_.size());
  }

  // ---- receive side (serial) ----------------------------------------------

  Firewall& firewall() noexcept { return firewall_; }
  const Firewall& firewall() const noexcept { return firewall_; }

  /// Query-of-death rule check; counts a Firewall drop on a hit.
  bool firewall_drops(std::size_t lane, const dns::Question& question) {
    if (!firewall_.drops(question, clock_->now())) return false;
    lanes_[lane].stats.drops.add(DropReason::Firewall);
    return true;
  }

  /// I/O admission gate (engine-wide bucket — one NIC). Counts an
  /// IoOverload drop against `lane` when the packet is refused.
  bool io_admit(std::size_t lane) {
    if (!io_bucket_) return true;
    if (io_bucket_->try_take(clock_->now())) return true;
    lanes_[lane].stats.drops.add(DropReason::IoOverload);
    return false;
  }

  /// Total penalty the lane's filter chain assigns the query.
  double score(std::size_t lane, const filters::QueryContext& ctx) {
    ++lanes_[lane].stats.scored;
    return lanes_[lane].scoring.score(ctx);
  }

  /// Penalty-queue placement; counts ScoreDiscard / QueueFull drops.
  filters::EnqueueOutcome enqueue(std::size_t lane, Item item, double score) {
    Lane& l = lanes_[lane];
    const auto outcome = l.queues.enqueue(std::move(item), score);
    switch (outcome) {
      case filters::EnqueueOutcome::Enqueued: ++l.stats.enqueued; break;
      case filters::EnqueueOutcome::DiscardedByScore:
        l.stats.drops.add(DropReason::ScoreDiscard);
        break;
      case filters::EnqueueOutcome::DroppedQueueFull:
        l.stats.drops.add(DropReason::QueueFull);
        break;
    }
    return outcome;
  }

  // ---- processing phase ---------------------------------------------------
  //
  // begin_phase (serial) → next()/observe_response() per lane (parallel-
  // safe for distinct lanes) → end_phase (serial). A driver that stops
  // calling next() early (crash, drain deadline) simply leaves budget
  // unspent; end_phase refunds it to the compute bucket.

  /// Serial. Assigns per-lane budgets from the compute bucket, one token
  /// at a time round-robin in lane order (the take sequence a serial
  /// take-one/process-one loop would produce), capped per lane at its
  /// backlog. With metering disabled, every lane is budgeted its whole
  /// backlog. Returns false when there is nothing to release (no backlog
  /// or no tokens) — end_phase must not be called in that case.
  bool begin_phase() {
    phase_metered_ = true;
    for (auto& lane : lanes_) {
      lane.budget = 0;
      lane.processed = 0;
    }
    if (!compute_bucket_) {
      bool any = false;
      for (auto& lane : lanes_) {
        lane.budget = lane.queues.size();
        any |= lane.budget > 0;
      }
      phase_metered_ = false;
      return any;
    }
    const Timepoint now = clock_->now();
    bool any = false;
    bool assigned = true;
    while (assigned) {
      assigned = false;
      for (auto& lane : lanes_) {
        if (lane.budget >= lane.queues.size()) continue;
        if (!compute_bucket_->try_take(now)) return any;
        ++lane.budget;
        any = true;
        assigned = true;
      }
    }
    return any;
  }

  /// Serial. Spreads a caller-supplied budget round-robin across lanes
  /// with backlog, bypassing the compute bucket (end_phase will not
  /// refund). Used by tests and drivers that meter compute themselves.
  void begin_phase_unmetered(std::size_t budget) {
    phase_metered_ = false;
    for (auto& lane : lanes_) {
      lane.budget = 0;
      lane.processed = 0;
    }
    std::size_t remaining = budget;
    bool assigned = true;
    while (remaining > 0 && assigned) {
      assigned = false;
      for (auto& lane : lanes_) {
        if (remaining == 0) break;
        if (lane.budget >= lane.queues.size()) continue;
        ++lane.budget;
        --remaining;
        assigned = true;
      }
    }
  }

  std::size_t lane_budget(std::size_t lane) const noexcept { return lanes_[lane].budget; }

  /// Parallel-safe for distinct lanes. The next query the work-conserving
  /// scheduler releases for `lane`: lowest-penalty head, while the lane's
  /// phase budget lasts. nullopt when the budget is spent or the lane is
  /// empty.
  std::optional<Item> next(std::size_t lane) {
    Lane& l = lanes_[lane];
    if (l.processed >= l.budget) return std::nullopt;
    auto item = l.queues.dequeue();
    if (!item) return std::nullopt;
    ++l.processed;
    ++l.stats.released;
    return item;
  }

  /// Parallel-safe for distinct lanes. Fans a response outcome back to
  /// the lane's filters (NXDOMAIN counting etc.).
  void observe_response(std::size_t lane, const filters::QueryContext& ctx, dns::Rcode rcode) {
    lanes_[lane].scoring.observe_response(ctx, rcode);
  }

  /// Serial. Refunds unspent metered budget to the compute bucket and
  /// closes the phase. Returns the number of queries released this phase.
  std::size_t end_phase() {
    std::size_t total = 0;
    for (auto& lane : lanes_) {
      total += lane.processed;
      if (phase_metered_ && compute_bucket_ && lane.budget > lane.processed) {
        compute_bucket_->credit(static_cast<double>(lane.budget - lane.processed));
      }
      lane.budget = 0;
      lane.processed = 0;
    }
    phase_metered_ = true;
    return total;
  }

  // ---- lifecycle ----------------------------------------------------------

  /// Drops everything queued in `lane` (accounted as RestartFlush) and
  /// resets its phase state. Returns the number flushed.
  std::size_t flush_lane(std::size_t lane) {
    Lane& l = lanes_[lane];
    const std::size_t flushed = l.queues.size();
    if (flushed > 0) l.stats.drops.add(DropReason::RestartFlush, flushed);
    l.queues = filters::PenaltyQueueSet<Item>(config_.queue_config);
    l.budget = 0;
    l.processed = 0;
    return flushed;
  }

  /// Restores both buckets to their full-capacity initial state (instance
  /// restart semantics).
  void reset_buckets() {
    if (config_.compute_capacity_qps > 0.0) {
      compute_bucket_.emplace(config_.compute_capacity_qps,
                              config_.compute_capacity_qps * config_.compute_burst_fraction);
    } else {
      compute_bucket_.reset();
    }
    if (config_.io_capacity_qps > 0.0) {
      io_bucket_.emplace(config_.io_capacity_qps,
                         config_.io_capacity_qps * config_.io_burst_fraction);
    } else {
      io_bucket_.reset();
    }
  }

  // ---- filters ------------------------------------------------------------

  /// Installs one filter instance per lane via the factory (each lane
  /// scores independently, so stateful filters shard their learned state).
  void install_filter(const filters::FilterFactory& factory) {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_[i].scoring.add_filter(factory(i, lanes_.size()));
    }
  }

  filters::ScoringEngine& scoring(std::size_t lane) noexcept { return lanes_[lane].scoring; }

  // ---- introspection ------------------------------------------------------

  const filters::PenaltyQueueSet<Item>& queues(std::size_t lane) const noexcept {
    return lanes_[lane].queues;
  }

  bool has_pending() const noexcept {
    for (const auto& lane : lanes_) {
      if (!lane.queues.empty()) return true;
    }
    return false;
  }
  std::size_t pending() const noexcept {
    std::size_t n = 0;
    for (const auto& lane : lanes_) n += lane.queues.size();
    return n;
  }
  std::size_t lane_pending(std::size_t lane) const noexcept { return lanes_[lane].queues.size(); }

  const DefenseLaneStats& lane_stats(std::size_t lane) const noexcept {
    return lanes_[lane].stats;
  }

  /// Registers every lane's defense counters (lane-labelled) plus the
  /// live per-priority queue-depth gauges under `base`. The engine view
  /// that the old stats() merge produced is now a registry sum.
  void register_metrics(obs::MetricRegistry& reg, const obs::LabelSet& base) const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      lanes_[i].stats.register_into(reg, obs::with(base, "lane", i));
    }
    const std::size_t queues = config_.queue_config.max_scores.size();
    for (std::size_t q = 0; q < queues; ++q) {
      reg.gauge_fn(
          "akadns_penalty_queue_depth", obs::with(base, "queue", q),
          [this, q] {
            std::size_t depth = 0;
            for (const auto& lane : lanes_) depth += lane.queues.queue_depth(q);
            return static_cast<double>(depth);
          },
          obs::GaugeAgg::Sum, "live penalty-queue backlog per priority");
    }
  }

  /// Live penalty-queue depths summed per priority index across lanes —
  /// the backlog shape the NOCC watches during an attack.
  std::vector<std::size_t> queue_depths() const {
    std::vector<std::size_t> depths(config_.queue_config.max_scores.size(), 0);
    for (const auto& lane : lanes_) {
      for (std::size_t q = 0; q < depths.size(); ++q) depths[q] += lane.queues.queue_depth(q);
    }
    return depths;
  }

 private:
  /// One independent defense shard: filter chain, penalty queues, phase
  /// budget, and counters. next()/observe_response() touch nothing else.
  struct Lane {
    explicit Lane(const filters::PenaltyQueueConfig& queue_config) : queues(queue_config) {}

    filters::ScoringEngine scoring;
    filters::PenaltyQueueSet<Item> queues;
    DefenseLaneStats stats;
    std::size_t budget = 0;
    std::size_t processed = 0;
  };

  DefenseConfig config_;
  const Clock* clock_;
  Firewall firewall_;
  std::optional<TokenBucket> compute_bucket_;
  std::optional<TokenBucket> io_bucket_;
  bool phase_metered_ = true;
  std::vector<Lane> lanes_;
};

}  // namespace akadns::defense
