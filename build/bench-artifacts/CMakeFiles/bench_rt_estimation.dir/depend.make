# Empty dependencies file for bench_rt_estimation.
# This may be replaced when dependencies are built.
