#include "common/stage_stats.hpp"

#include <algorithm>
#include <cmath>

namespace akadns {

void LatencyRecorder::record(double value) noexcept {
  moments_.add(value);
  histogram_.add(std::log10(std::max(value, 1.0)));
}

double LatencyRecorder::quantile(double q) const {
  if (histogram_.total() <= 0.0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * histogram_.total();
  double cumulative = 0.0;
  for (std::size_t i = 0; i < histogram_.bin_count(); ++i) {
    const double c = histogram_.count(i);
    if (cumulative + c >= target && c > 0.0) {
      const double within = c > 0.0 ? (target - cumulative) / c : 0.0;
      const double log_value =
          histogram_.bin_lo(i) + within * (histogram_.bin_hi(i) - histogram_.bin_lo(i));
      // Clamp to observed extremes: the edge bins absorb outliers.
      return std::clamp(std::pow(10.0, log_value), moments_.min(), moments_.max());
    }
    cumulative += c;
  }
  return moments_.max();
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  moments_.merge(other.moments_);
  histogram_.merge(other.histogram_);
}

std::string LatencyRecorder::summary() const {
  std::string out;
  out += "count=" + fmt_count(count());
  out += " mean=" + fmt(moments_.mean(), 1);
  out += " p50=" + fmt(quantile(0.50), 1);
  out += " p99=" + fmt(quantile(0.99), 1);
  out += " max=" + fmt(moments_.max(), 1);
  return out;
}

}  // namespace akadns
