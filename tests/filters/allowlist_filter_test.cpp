#include "filters/allowlist_filter.hpp"

#include <gtest/gtest.h>

namespace akadns::filters {
namespace {

// QueryContext references its question; a static keeps it alive.
const dns::Question& fixed_question() {
  static const dns::Question q{dns::DnsName::from("q.example.com"), dns::RecordType::A,
                               dns::RecordClass::IN};
  return q;
}

QueryContext make_ctx(const IpAddr& addr, SimTime now) {
  return QueryContext{Endpoint{addr, 5353}, 64, fixed_question(), now};
}

TEST(AllowlistFilter, DormantByDefault) {
  AllowlistFilter filter;
  EXPECT_FALSE(filter.active());
  // Unknown source, filter dormant: no penalty.
  EXPECT_DOUBLE_EQ(filter.score(make_ctx(*IpAddr::parse("203.0.113.1"), SimTime::origin())),
                   0.0);
}

TEST(AllowlistFilter, ManualActivationPenalizesUnknown) {
  AllowlistFilter filter({.penalty = 50.0});
  filter.allow(*IpAddr::parse("192.0.2.1"));
  filter.set_active(true);
  EXPECT_DOUBLE_EQ(filter.score(make_ctx(*IpAddr::parse("192.0.2.1"), SimTime::origin())), 0.0);
  EXPECT_DOUBLE_EQ(filter.score(make_ctx(*IpAddr::parse("203.0.113.1"), SimTime::origin())),
                   50.0);
  EXPECT_EQ(filter.total_penalized(), 1u);
}

TEST(AllowlistFilter, BulkAllow) {
  AllowlistFilter filter;
  filter.allow_bulk({*IpAddr::parse("10.0.0.1"), *IpAddr::parse("10.0.0.2")});
  EXPECT_EQ(filter.allowlist_size(), 2u);
  EXPECT_TRUE(filter.is_allowed(*IpAddr::parse("10.0.0.1")));
  EXPECT_FALSE(filter.is_allowed(*IpAddr::parse("10.0.0.9")));
}

TEST(AllowlistFilter, AutoActivatesUnderDiverseUnknownFlood) {
  AllowlistFilter filter({.penalty = 50.0,
                          .activation_unknown_qps = 100.0,
                          .activation_unknown_sources = 50,
                          .window = Duration::seconds(1),
                          .auto_activate = true});
  filter.allow(*IpAddr::parse("192.0.2.1"));
  auto t = SimTime::origin();
  // Flood: 1000 unknown sources at ~1000 qps for 2+ windows.
  for (int i = 0; i < 2500; ++i) {
    const IpAddr src = IpAddr(Ipv4Addr(0xCB007100u + static_cast<std::uint32_t>(i % 1000)));
    filter.score(make_ctx(src, t));
    t += Duration::millis(1);
  }
  EXPECT_TRUE(filter.active());
  // Known resolver still unpenalized during the attack.
  EXPECT_DOUBLE_EQ(filter.score(make_ctx(*IpAddr::parse("192.0.2.1"), t)), 0.0);
  // Unknown source now penalized.
  EXPECT_GT(filter.score(make_ctx(*IpAddr::parse("198.51.100.7"), t)), 0.0);
}

TEST(AllowlistFilter, DoesNotActivateOnLowDiversityOverrun) {
  // High volume from a single unknown source: rate limiting's job, not
  // the allowlist's (diversity test fails).
  AllowlistFilter filter({.activation_unknown_qps = 100.0,
                          .activation_unknown_sources = 50,
                          .window = Duration::seconds(1)});
  auto t = SimTime::origin();
  for (int i = 0; i < 2500; ++i) {
    filter.score(make_ctx(*IpAddr::parse("203.0.113.9"), t));
    t += Duration::millis(1);
  }
  EXPECT_FALSE(filter.active());
}

TEST(AllowlistFilter, DeactivatesWhenAttackSubsides) {
  AllowlistFilter filter({.activation_unknown_qps = 100.0,
                          .activation_unknown_sources = 10,
                          .window = Duration::seconds(1)});
  auto t = SimTime::origin();
  for (int i = 0; i < 2500; ++i) {
    const IpAddr src = IpAddr(Ipv4Addr(0xCB007100u + static_cast<std::uint32_t>(i % 100)));
    filter.score(make_ctx(src, t));
    t += Duration::millis(1);
  }
  EXPECT_TRUE(filter.active());
  // Quiet period: a trickle of queries over several windows.
  for (int i = 0; i < 10; ++i) {
    t += Duration::seconds(2);
    filter.score(make_ctx(*IpAddr::parse("198.51.100.1"), t));
  }
  EXPECT_FALSE(filter.active());
}

TEST(AllowlistFilter, ManualOverrideDisablesAutoActivation) {
  AllowlistFilter filter({.activation_unknown_qps = 1.0,
                          .activation_unknown_sources = 1,
                          .window = Duration::seconds(1)});
  filter.set_active(false);
  auto t = SimTime::origin();
  for (int i = 0; i < 5000; ++i) {
    const IpAddr src = IpAddr(Ipv4Addr(0xCB007100u + static_cast<std::uint32_t>(i)));
    filter.score(make_ctx(src, t));
    t += Duration::millis(1);
  }
  EXPECT_FALSE(filter.active());
}

}  // namespace
}  // namespace akadns::filters
