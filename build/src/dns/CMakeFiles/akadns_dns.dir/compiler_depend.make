# Empty compiler generated dependencies file for akadns_dns.
# This may be replaced when dependencies are built.
