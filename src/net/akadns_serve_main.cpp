// akadns-serve: authoritative DNS daemon on the akadns datapath.
//
//   akadns-serve --synthetic 1000 --seed 42 --port 5300 --workers 4
//   akadns-serve --zone example.zone --port 5300
//   akadns-serve --secondary-of 127.0.0.1:5300 --track-apex ent0.example --port 5301
//
// All zone content flows through one propagation::ZonePublisher: the
// synthetic corpus is adopted into it, --zone files are published
// through it, SIGHUP re-reads and republishes them, and a secondary
// pulls versions into it over AXFR/IXFR — the serve workers' replicas
// subscribe once and absorb every path identically, without dropping
// queries across a mid-run zone change.
//
// Serves until SIGTERM/SIGINT, then drains gracefully (stops accepting,
// flushes in-flight work) and dumps final telemetry as JSON on stdout.
// The --synthetic corpus is deterministic in (count, seed), which is what
// lets akadns-loadgen rebuild the identical zones and verify responses
// byte-for-byte without any side channel — including the deterministic
// --flip-after-ms evolution (workload::evolved_zone).

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/drop_reason.hpp"
#include "dns/name.hpp"
#include "dns/wire.hpp"
#include "net/ready_line.hpp"
#include "net/server.hpp"
#include "net/zone_sync.hpp"
#include "obs/exposition.hpp"
#include "obs/registry.hpp"
#include "obs/stats_http.hpp"
#include "propagation/transfer_service.hpp"
#include "propagation/zone_publisher.hpp"
#include "workload/zones.hpp"
#include "zone/zone_parser.hpp"

namespace {

/// Exit codes (documented in --help): 0 clean drain, 1 runtime failure,
/// 2 usage error, 3 forced exit (second stop signal).
constexpr int kExitForced = 3;

volatile std::sig_atomic_t g_stop_requested = 0;
volatile std::sig_atomic_t g_reload_requested = 0;
/// Self-suspension requests (SIGUSR1 suspend / SIGUSR2 resume): the
/// latest signal wins; the main loop applies the state to the server.
volatile std::sig_atomic_t g_suspend_requested = -1;

void handle_stop(int) {
  // Idempotent stop with an escape hatch: the first signal starts the
  // graceful drain; a second one means the drain is stuck (or the
  // operator is impatient) and forces an immediate exit with a distinct
  // code. _exit is async-signal-safe; skipping atexit/telemetry is the
  // point.
  if (g_stop_requested) _exit(kExitForced);
  g_stop_requested = 1;
}
void handle_reload(int) { g_reload_requested = 1; }
void handle_suspend(int) { g_suspend_requested = 1; }
void handle_resume(int) { g_suspend_requested = 0; }

struct HostPort {
  akadns::Ipv4Addr addr;
  std::uint16_t port = 0;
};

bool parse_host_port(const std::string& text, HostPort& out) {
  const auto colon = text.rfind(':');
  if (colon == std::string::npos || colon + 1 >= text.size()) return false;
  const auto addr = akadns::Ipv4Addr::parse(text.substr(0, colon));
  if (!addr) return false;
  out.addr = *addr;
  out.port = static_cast<std::uint16_t>(std::strtoul(text.c_str() + colon + 1, nullptr, 10));
  return out.port != 0;
}

struct CliOptions {
  std::vector<std::string> zone_files;
  std::size_t synthetic_zones = 0;
  std::uint64_t seed = 1;
  std::string addr = "127.0.0.1";
  std::uint16_t port = 5300;
  std::size_t workers = 4;
  std::size_t batch = 32;
  std::size_t edns_max = 1232;
  bool defense = false;
  double compute_qps = 0.0;
  std::uint64_t nxdomain_threshold = 0;  // 0 = keep the DefenseOptions default
  double nxdomain_penalty = 0.0;         // 0 = keep the DefenseOptions default
  std::vector<std::string> qod_drops;
  // Propagation roles.
  std::vector<std::string> notify_targets;  // host:port strings
  std::string secondary_of;                 // host:port, empty = primary only
  std::vector<std::string> track_apexes;
  std::uint64_t refresh_ms = 5000;
  // Freshness-ladder caps (serve-stale drills): 0 = the zone's SOA
  // refresh/expire verbatim.
  std::uint64_t stale_after_ms = 0;
  std::uint64_t expire_after_ms = 0;
  // Live-reload drill: republish evolved synthetic zones mid-run.
  std::uint64_t flip_after_ms = 0;
  std::size_t flip_count = 1;
  /// -1 = no stats endpoint; 0 = ephemeral (port printed on the ready line).
  int stats_port = -1;
  bool help = false;
};

void print_usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --zone FILE        load a master-format zone file (repeatable);\n"
      "                     SIGHUP re-reads and republishes every --zone file\n"
      "  --synthetic N      publish N deterministic synthetic zones\n"
      "  --seed S           seed for --synthetic (default 1)\n"
      "                     --zone and --synthetic compose: files are published\n"
      "                     on top of the corpus through one pipeline (a file\n"
      "                     reusing a synthetic apex must carry a newer serial)\n"
      "  --addr A           bind address (default 127.0.0.1)\n"
      "  --port P           UDP+TCP port, 0 = ephemeral (default 5300)\n"
      "  --workers N        SO_REUSEPORT worker threads (default 4)\n"
      "  --batch N          datagrams per recvmmsg/sendmmsg (default 32)\n"
      "  --edns-max N       EDNS payload-size ceiling (default 1232)\n"
      "  --notify H:P       send NOTIFY to this secondary on every publish\n"
      "                     (repeatable)\n"
      "  --secondary-of H:P pull zones from this primary (SOA refresh + IXFR,\n"
      "                     AXFR fallback); NOTIFYs from it collapse the wait\n"
      "  --track-apex NAME  zone apex the secondary bootstraps/tracks\n"
      "                     (repeatable; default: whatever is already local)\n"
      "  --refresh-ms T     secondary SOA probe cadence (default 5000)\n"
      "  --stale-after-ms T cap on the SOA refresh timer: a tracked zone not\n"
      "                     confirmed for T ms is *stale* (served, counted,\n"
      "                     zone_staleness_seconds > 0); 0 = SOA verbatim\n"
      "  --expire-after-ms T cap on the SOA expire timer: past it the zone is\n"
      "                     withdrawn (queries REFUSED, /healthz 503);\n"
      "                     0 = SOA verbatim\n"
      "  --flip-after-ms T  live-reload drill: after T ms republish the first\n"
      "                     --flip-count synthetic zones, deterministically\n"
      "                     evolved (serial+1, A records' last octet +1)\n"
      "  --flip-count K     zones the drill flips (default 1)\n"
      "  --defense MODE     off|on: route queries through the filter chain +\n"
      "                     penalty queues ahead of the responder (default off)\n"
      "  --compute-qps Q    defense compute metering, answers/sec server-wide\n"
      "                     (0 = unmetered; only meaningful with --defense on)\n"
      "  --qod-drop NAME    install a query-of-death firewall rule dropping NAME\n"
      "                     and everything below it (repeatable)\n"
      "  --nxdomain-threshold N  server-wide NXDOMAINs per zone per window that arm\n"
      "                     the random-subdomain filter (default 200)\n"
      "  --nxdomain-penalty P  score added to random-subdomain probes of an armed\n"
      "                     zone; >= 200 discards them outright (default 150)\n"
      "  --stats-port P     serve live telemetry over HTTP on 127.0.0.1:P\n"
      "                     (/metrics Prometheus text, /metrics.json, /healthz;\n"
      "                     0 = ephemeral, port echoed on the ready line)\n"
      "Once every socket is bound the daemon prints one machine-readable JSON\n"
      "ready line on stdout ({\"akadns_serve_ready\":{pid, addr, udp_port,\n"
      "tcp_port, stats_port, workers, zones, generation, defense}}) reporting\n"
      "the *bound* ports, so --port 0 / --stats-port 0 compose with a\n"
      "supervisor handshake without polling.\n"
      "Signals: SIGHUP republishes --zone files; SIGTERM/SIGINT drains\n"
      "gracefully and dumps telemetry JSON; a second SIGTERM/SIGINT forces an\n"
      "immediate exit (code 3); SIGUSR1 self-suspends (/healthz flips to 503,\n"
      "queries still answered); SIGUSR2 resumes.\n"
      "Exit codes: 0 clean drain; 1 runtime failure; 2 usage error; 3 forced\n"
      "exit by a second stop signal.\n",
      argv0);
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", arg.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
      return true;
    } else if (arg == "--zone") {
      const char* v = need_value();
      if (!v) return false;
      opts.zone_files.emplace_back(v);
    } else if (arg == "--synthetic") {
      const char* v = need_value();
      if (!v) return false;
      opts.synthetic_zones = std::strtoull(v, nullptr, 10);
    } else if (arg == "--seed") {
      const char* v = need_value();
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--addr") {
      const char* v = need_value();
      if (!v) return false;
      opts.addr = v;
    } else if (arg == "--port") {
      const char* v = need_value();
      if (!v) return false;
      opts.port = static_cast<std::uint16_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--workers") {
      const char* v = need_value();
      if (!v) return false;
      opts.workers = std::strtoull(v, nullptr, 10);
    } else if (arg == "--batch") {
      const char* v = need_value();
      if (!v) return false;
      opts.batch = std::strtoull(v, nullptr, 10);
    } else if (arg == "--edns-max") {
      const char* v = need_value();
      if (!v) return false;
      opts.edns_max = std::strtoull(v, nullptr, 10);
    } else if (arg == "--notify") {
      const char* v = need_value();
      if (!v) return false;
      opts.notify_targets.emplace_back(v);
    } else if (arg == "--secondary-of") {
      const char* v = need_value();
      if (!v) return false;
      opts.secondary_of = v;
    } else if (arg == "--track-apex") {
      const char* v = need_value();
      if (!v) return false;
      opts.track_apexes.emplace_back(v);
    } else if (arg == "--refresh-ms") {
      const char* v = need_value();
      if (!v) return false;
      opts.refresh_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--stale-after-ms") {
      const char* v = need_value();
      if (!v) return false;
      opts.stale_after_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--expire-after-ms") {
      const char* v = need_value();
      if (!v) return false;
      opts.expire_after_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--flip-after-ms") {
      const char* v = need_value();
      if (!v) return false;
      opts.flip_after_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--flip-count") {
      const char* v = need_value();
      if (!v) return false;
      opts.flip_count = std::strtoull(v, nullptr, 10);
    } else if (arg == "--defense") {
      const char* v = need_value();
      if (!v) return false;
      if (std::strcmp(v, "on") == 0) {
        opts.defense = true;
      } else if (std::strcmp(v, "off") == 0) {
        opts.defense = false;
      } else {
        std::fprintf(stderr, "--defense wants on|off\n");
        return false;
      }
    } else if (arg == "--compute-qps") {
      const char* v = need_value();
      if (!v) return false;
      opts.compute_qps = std::strtod(v, nullptr);
    } else if (arg == "--qod-drop") {
      const char* v = need_value();
      if (!v) return false;
      opts.qod_drops.emplace_back(v);
    } else if (arg == "--stats-port") {
      const char* v = need_value();
      if (!v) return false;
      opts.stats_port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--nxdomain-threshold") {
      const char* v = need_value();
      if (!v) return false;
      opts.nxdomain_threshold = std::strtoull(v, nullptr, 10);
    } else if (arg == "--nxdomain-penalty") {
      const char* v = need_value();
      if (!v) return false;
      opts.nxdomain_penalty = std::strtod(v, nullptr);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

/// Parses and publishes one master file through the pipeline. Returns
/// the published apex (for NOTIFY fanout), or nullopt on failure. An
/// unchanged serial is reported but not fatal on the `reload` path —
/// SIGHUP with an untouched file is a no-op, not a crash.
std::optional<akadns::dns::DnsName> publish_zone_file(
    const std::string& path, akadns::propagation::ZonePublisher& publisher, bool reload) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open zone file: %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = akadns::zone::parse_master_file(text.str(), {});
  if (!parsed) {
    std::fprintf(stderr, "parse error in %s: %s\n", path.c_str(), parsed.error().c_str());
    return std::nullopt;
  }
  auto zone = std::move(parsed).take();
  const std::string apex_text = zone.apex().to_string();
  const akadns::dns::DnsName apex = zone.apex();
  const std::uint32_t serial = zone.serial();
  auto published = publisher.publish(std::move(zone));
  if (!published) {
    std::fprintf(stderr, "%s %s: %s\n", reload ? "reload skipped" : "publish rejected",
                 path.c_str(), published.error().c_str());
    return std::nullopt;
  }
  std::fprintf(stderr, "published %s serial=%u from %s%s\n", apex_text.c_str(), serial,
               path.c_str(), published.value()->incremental ? " (incremental)" : "");
  return apex;
}

/// Fire-and-forget NOTIFY datagram (RFC 1996). The secondary's refresh
/// loop is the reliability mechanism; the NOTIFY only shortens the wait.
void send_notify(const HostPort& target, const akadns::dns::DnsName& apex,
                 std::uint32_t serial, std::uint16_t id) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return;
  sockaddr_storage dst{};
  const socklen_t len = akadns::net::sockaddr_from_endpoint(
      akadns::Endpoint{akadns::IpAddr(target.addr), target.port}, dst);
  const auto wire =
      akadns::dns::encode(akadns::propagation::TransferService::make_notify(apex, serial, id));
  (void)::sendto(fd, wire.data(), wire.size(), MSG_NOSIGNAL,
                 reinterpret_cast<const sockaddr*>(&dst), len);
  ::close(fd);
}

void notify_all(const std::vector<HostPort>& targets,
                akadns::propagation::ZonePublisher& publisher,
                const akadns::dns::DnsName& apex, std::uint16_t& next_id) {
  if (targets.empty()) return;
  const auto compiled = publisher.snapshot(apex);
  if (!compiled) return;
  for (const auto& target : targets) {
    send_notify(target, apex, compiled->source()->serial(), next_id++);
  }
}

/// Final telemetry dump: one machine-readable JSON document rendered
/// from the same merged metrics snapshot /metrics serves, replacing the
/// seed's hand-rolled per-struct printf rendering.
void dump_telemetry(const akadns::obs::MetricsSnapshot& snap) {
  std::fputs(akadns::obs::render_json(snap).c_str(), stdout);
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage(argv[0]);
    return 2;
  }
  if (opts.help) {
    print_usage(argv[0]);
    return 0;
  }
  if (opts.zone_files.empty() && opts.synthetic_zones == 0 && opts.secondary_of.empty()) {
    std::fprintf(stderr, "no zones: pass --zone FILE, --synthetic N, or --secondary-of H:P\n");
    print_usage(argv[0]);
    return 2;
  }

  // Handlers go in before any slow work (zone compiles, binds): a stop
  // signal received mid-startup completes startup and immediately
  // drains, instead of killing the process with state half-built.
  struct sigaction sa {};
  sa.sa_handler = handle_stop;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  struct sigaction hup {};
  hup.sa_handler = handle_reload;
  ::sigaction(SIGHUP, &hup, nullptr);
  struct sigaction usr {};
  usr.sa_handler = handle_suspend;
  ::sigaction(SIGUSR1, &usr, nullptr);
  usr.sa_handler = handle_resume;
  ::sigaction(SIGUSR2, &usr, nullptr);

  const auto addr = akadns::Ipv4Addr::parse(opts.addr);
  if (!addr) {
    std::fprintf(stderr, "bad --addr: %s\n", opts.addr.c_str());
    return 2;
  }
  std::vector<HostPort> notify_targets;
  for (const auto& text : opts.notify_targets) {
    HostPort target;
    if (!parse_host_port(text, target)) {
      std::fprintf(stderr, "bad --notify target: %s\n", text.c_str());
      return 2;
    }
    notify_targets.push_back(target);
  }

  // One pipeline for all zone content. The synthetic corpus is adopted
  // (compiled snapshots shared, no recompile); --zone files and every
  // later change (SIGHUP, secondary transfers, flip drill) publish
  // through it, and the serve workers' replicas subscribe to it.
  akadns::MonotonicClock clock;
  akadns::propagation::ZonePublisher publisher(clock);
  std::unique_ptr<akadns::workload::HostedZones> synthetic;
  if (opts.synthetic_zones > 0) {
    akadns::workload::HostedZonesConfig zc;
    zc.zone_count = opts.synthetic_zones;
    synthetic = std::make_unique<akadns::workload::HostedZones>(zc, opts.seed);
    publisher.adopt(synthetic->store());
    std::fprintf(stderr, "published %zu synthetic zones (seed %llu)\n",
                 opts.synthetic_zones, (unsigned long long)opts.seed);
  }
  for (const auto& path : opts.zone_files) {
    if (!publish_zone_file(path, publisher, /*reload=*/false)) return 1;
  }

  // Secondary role: pull zones from a primary into the same publisher.
  std::unique_ptr<akadns::net::SecondarySync> secondary;
  if (!opts.secondary_of.empty()) {
    HostPort primary;
    if (!parse_host_port(opts.secondary_of, primary)) {
      std::fprintf(stderr, "bad --secondary-of target: %s\n", opts.secondary_of.c_str());
      return 2;
    }
    akadns::net::SecondaryConfig sc;
    sc.primary_addr = primary.addr;
    sc.primary_port = primary.port;
    sc.refresh_interval = akadns::Duration::millis(
        static_cast<std::int64_t>(std::max<std::uint64_t>(1, opts.refresh_ms)));
    // Freshness ladder, shared with the serve workers: the sync confirms
    // refreshes into the tracker, the query path gates on it.
    sc.freshness_caps.refresh_cap =
        akadns::Duration::millis(static_cast<std::int64_t>(opts.stale_after_ms));
    sc.freshness_caps.expire_cap =
        akadns::Duration::millis(static_cast<std::int64_t>(opts.expire_after_ms));
    for (const auto& text : opts.track_apexes) {
      auto apex = akadns::dns::DnsName::parse(text);
      if (!apex) {
        std::fprintf(stderr, "bad --track-apex name: %s\n", text.c_str());
        return 2;
      }
      sc.apexes.push_back(std::move(*apex));
    }
    secondary = std::make_unique<akadns::net::SecondarySync>(std::move(sc), publisher);
  }

  akadns::net::ServeConfig config;
  config.bind_addr = *addr;
  config.port = opts.port;
  config.workers = opts.workers;
  config.udp_batch = opts.batch;
  config.responder.edns_udp_payload_max = opts.edns_max;
  config.defense.enabled = opts.defense;
  config.defense.compute_qps = opts.compute_qps;
  if (opts.nxdomain_threshold > 0) config.defense.nxdomain_threshold = opts.nxdomain_threshold;
  if (opts.nxdomain_penalty > 0.0) config.defense.nxdomain_penalty = opts.nxdomain_penalty;
  for (const auto& name_text : opts.qod_drops) {
    auto name = akadns::dns::DnsName::parse(name_text);
    if (!name) {
      std::fprintf(stderr, "bad --qod-drop name: %s\n", name_text.c_str());
      return 2;
    }
    config.defense.qod_rules.push_back(std::move(*name));
  }
  if (secondary) {
    config.on_notify = [sync = secondary.get()](const akadns::dns::DnsName&) {
      sync->notify_kick();
    };
    // The workers consult the same tracker the sync feeds: stale zones
    // keep answering (counted), expired zones are withdrawn per query.
    config.freshness = secondary->freshness();
  }

  akadns::net::Server server(config, publisher);
  auto started = server.start();
  if (!started) {
    std::fprintf(stderr, "start failed: %s\n", started.error().c_str());
    return 1;
  }
  if (secondary) secondary->start();

  // Control-plane metrics (publisher, journal, master compile stats,
  // secondary refresh loop) live outside the worker registry; a scrape
  // merges both snapshots into one fleet view of this process.
  akadns::obs::MetricRegistry control_registry;
  publisher.register_metrics(control_registry,
                             akadns::obs::labels({{"subsystem", "publisher"}}));
  if (secondary) {
    secondary->register_metrics(control_registry,
                                akadns::obs::labels({{"subsystem", "secondary"}}));
  }
  const auto scrape = [&server, &control_registry] {
    auto snap = server.metrics_snapshot();
    snap.merge(control_registry.snapshot());
    return snap;
  };

  // Live telemetry endpoint: scrapes read the workers' single-writer
  // atomics, so a 10 Hz poller never perturbs the datapath. /healthz
  // reports unready while draining, while a secondary has not yet
  // completed a clean refresh pass, or once a tracked zone ages past its
  // SOA expire — stale-but-not-expired zones do NOT degrade it
  // (serve-stale is the intended mode under primary loss).
  akadns::obs::StatsServer stats_server(
      scrape, [&server, sec = secondary.get()] {
        return server.ready() && (!sec || !sec->degraded());
      });
  std::uint16_t stats_port = 0;
  if (opts.stats_port >= 0) {
    std::string err;
    if (!stats_server.start(static_cast<std::uint16_t>(opts.stats_port), &err)) {
      std::fprintf(stderr, "stats endpoint failed: %s\n", err.c_str());
      return 1;
    }
    stats_port = stats_server.port();
  }

  // The machine-readable handshake: one JSON line reporting the bound
  // ports (supervisors, tests, and the CI smoke parse it with
  // net::parse_ready_line — never by polling a port).
  akadns::net::ReadyLine ready;
  ready.pid = static_cast<std::int64_t>(::getpid());
  ready.addr = opts.addr;
  ready.udp_port = server.udp_port();
  ready.tcp_port = server.tcp_port();
  ready.stats_port = stats_port;
  ready.workers = opts.workers;
  ready.zones = publisher.zone_count();
  ready.generation = publisher.stats().published.value();
  ready.defense = opts.defense;
  std::fputs(akadns::net::render_ready_line(ready).c_str(), stdout);
  std::fflush(stdout);

  std::uint16_t notify_id = 1;
  for (const auto& apex : publisher.apexes()) {
    notify_all(notify_targets, publisher, apex, notify_id);
  }

  const auto start_time = std::chrono::steady_clock::now();
  bool flipped = false;
  while (!g_stop_requested) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (g_suspend_requested >= 0) {
      const bool suspend = g_suspend_requested == 1;
      g_suspend_requested = -1;
      if (suspend != server.suspended()) {
        server.set_suspended(suspend);
        std::fprintf(stderr, suspend ? "self-suspended (healthz 503, still serving)\n"
                                     : "resumed (healthz 200)\n");
      }
    }
    if (g_reload_requested) {
      g_reload_requested = 0;
      for (const auto& path : opts.zone_files) {
        if (const auto apex = publish_zone_file(path, publisher, /*reload=*/true)) {
          notify_all(notify_targets, publisher, *apex, notify_id);
        }
      }
    }
    if (!flipped && opts.flip_after_ms > 0 && synthetic &&
        std::chrono::steady_clock::now() - start_time >=
            std::chrono::milliseconds(opts.flip_after_ms)) {
      flipped = true;
      const std::size_t count = std::min(opts.flip_count, synthetic->zone_count());
      for (std::size_t rank = 0; rank < count; ++rank) {
        auto evolved = synthetic->evolved(rank, 1);
        const auto apex = evolved.apex();
        auto published = publisher.publish(std::move(evolved));
        if (!published) {
          std::fprintf(stderr, "flip rejected for %s: %s\n", apex.to_string().c_str(),
                       published.error().c_str());
          continue;
        }
        notify_all(notify_targets, publisher, apex, notify_id);
      }
      std::fprintf(stderr, "flipped %zu zones\n", count);
    }
  }

  std::fprintf(stderr, "draining...\n");
  stats_server.stop();
  if (secondary) secondary->stop();
  server.stop();
  dump_telemetry(scrape());
  return 0;
}
